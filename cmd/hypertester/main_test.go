package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParsePorts(t *testing.T) {
	cases := []struct {
		in      string
		want    []float64
		wantErr string
	}{
		{in: "100", want: []float64{100}},
		{in: "100, 25,10", want: []float64{100, 25, 10}},
		{in: "0.5", want: []float64{0.5}},
		{in: "abc", wantErr: `bad port rate "abc"`},
		{in: "100,,25", wantErr: `bad port rate ""`},
		{in: "0", wantErr: "positive, finite"},
		{in: "-25", wantErr: "positive, finite"},
		{in: "NaN", wantErr: "positive, finite"},
		{in: "nan", wantErr: "positive, finite"},
		{in: "+Inf", wantErr: "positive, finite"},
		{in: "-Inf", wantErr: "positive, finite"},
	}
	for _, tc := range cases {
		got, err := parsePorts(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parsePorts(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePorts(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parsePorts(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parsePorts(%q)[%d] = %v, want %v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestValidateTaskFlags(t *testing.T) {
	for _, k := range taskDUTKinds {
		if err := validateTaskFlags(k, time.Millisecond); err != nil {
			t.Errorf("validateTaskFlags(%q): %v", k, err)
		}
	}
	if err := validateTaskFlags("toaster", time.Millisecond); err == nil ||
		!strings.Contains(err.Error(), `unknown DUT kind "toaster"`) {
		t.Errorf("unknown DUT: err = %v", err)
	}
	if err := validateTaskFlags("sink", 0); err == nil ||
		!strings.Contains(err.Error(), "must be positive") {
		t.Errorf("zero duration: err = %v", err)
	}
	if err := validateTaskFlags("sink", -time.Second); err == nil {
		t.Error("negative duration accepted")
	}
}

// TestRunExitCodes drives run() through its validation error paths: every
// bad invocation must exit 2 with a diagnostic on stderr.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"no input", []string{}, "-task or -suite is required"},
		{"bad rate", []string{"-task", "x.nt", "-ports", "0"}, "positive, finite"},
		{"nan rate", []string{"-task", "x.nt", "-ports", "NaN"}, "positive, finite"},
		{"bad duration", []string{"-task", "x.nt", "-duration", "-1ms"}, "must be positive"},
		{"unknown dut", []string{"-task", "x.nt", "-dut", "toaster"}, `unknown DUT kind "toaster"`},
		{"missing task file", []string{"-task", "/nonexistent/x.nt"}, "read task"},
		{"missing suite file", []string{"-suite", "/nonexistent/s.json"}, "suite:"},
		{"negative simworkers", []string{"-suite", "s.json", "-simworkers", "-1"}, "negative"},
		{"bad flag", []string{"-frobnicate"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("run(%v) = %d, want 2 (stderr: %s)", tc.args, code, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr = %q, want containing %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestRunSuiteMode runs a tiny real suite through the CLI path end to end:
// a passing scenario exits 0, a failing check exits 1, and the -results
// file is valid JSON recording both.
func TestRunSuiteMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	suite := `{
  "name": "cli-test",
  "scenarios": [
    {
      "name": "tiny",
      "topology": {"ports": [100], "dut": "sink"},
      "program": {
        "name": "tiny",
        "source": [
          "T1 = trigger()",
          "    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])",
          "    .set(length, 64)",
          "    .set(port, 0)"
        ]
      },
      "traffic": {"window_us": 20, "seed": 1},
      "checks": [
        {"name": "traffic flowed", "kind": "threshold", "metric": "sink0.rx_packets", "op": ">", "value": 100},
        {"name": "CHECKVAL", "kind": "threshold", "metric": "sink0.gbps", "op": ">=", "value": GBPS}
      ]
    }
  ]
}`
	write := func(gbps string) string {
		path := filepath.Join(dir, "suite-"+gbps+".json")
		body := strings.ReplaceAll(suite, "GBPS", gbps)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	var stdout, stderr bytes.Buffer
	results := filepath.Join(dir, "results.json")
	code := run([]string{"-suite", write("50"), "-results", results}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("passing suite: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") || !strings.Contains(stdout.String(), "1 passed, 0 failed") {
		t.Errorf("stdout missing pass summary: %s", stdout.String())
	}
	data, err := os.ReadFile(results)
	if err != nil {
		t.Fatalf("results file: %v", err)
	}
	var decoded struct {
		Suite  string `json:"suite"`
		Pass   bool   `json:"pass"`
		Passed int    `json:"passed"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("results file is not JSON: %v", err)
	}
	if decoded.Suite != "cli-test" || !decoded.Pass || decoded.Passed != 1 {
		t.Errorf("results = %+v, want cli-test/pass/1", decoded)
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-suite", write("100000")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("failing suite: exit %d, want 1\nstdout: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "FAIL") || !strings.Contains(stdout.String(), `check "CHECKVAL"`) {
		t.Errorf("stdout missing failing check detail: %s", stdout.String())
	}
}
