// Command hypertester is the operator CLI: it loads a testing task written
// in the NTAPI text format (§4), deploys it on the simulated programmable
// switch, runs it against a chosen device under test, and prints the query
// reports — the §5.4 workflow end to end. With -suite it instead loads a
// declarative scenario suite (JSON), runs every scenario with its checks,
// and reports per-scenario pass/fail plus an optional machine-readable
// results file.
//
// Usage:
//
//	hypertester -task webtest.nt -dut httpfarm -duration 20ms
//	hypertester -task throughput.nt -p4        # dump the generated P4
//	hypertester -suite examples/suites/starter.json -results results.json
//
// Devices under test: sink (count only), reflector (bounce traffic back),
// httpfarm (stateful TCP/HTTP servers), scantarget (a probeable address
// space); scenario suites additionally know hhsink (per-flow counts vs a
// Count-Min shadow).
//
// Exit codes: 0 success, 1 suite checks failed, 2 invalid flags or
// unloadable inputs.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/scenario"
	"github.com/hypertester/hypertester/internal/testbed"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// taskDUTKinds are the DUTs the single-task path can build. Scenario suites
// use the scenario package's catalogue (adds hhsink).
var taskDUTKinds = []string{"sink", "reflector", "httpfarm", "scantarget"}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hypertester", flag.ContinueOnError)
	fs.SetOutput(stderr)
	taskFile := fs.String("task", "", "NTAPI task file (.nt)")
	suiteFile := fs.String("suite", "", "scenario suite file (JSON); overrides -task")
	resultsFile := fs.String("results", "", "write machine-readable suite results (JSON) here")
	ports := fs.String("ports", "100", "comma-separated port rates in Gbps")
	duration := fs.Duration("duration", 5*time.Millisecond, "virtual run duration")
	dutKind := fs.String("dut", "sink", "device under test: "+strings.Join(taskDUTKinds, "|"))
	simWorkers := fs.Int("simworkers", 0, "suite mode: run topologies on the parallel engine with this many workers (0 = per-scenario setting)")
	dumpP4 := fs.Bool("p4", false, "print the generated P4-14 program and exit")
	dumpP416 := fs.Bool("p4_16", false, "print the generated P4-16 (TNA) program and exit")
	pcapOut := fs.String("pcap", "", "write frames received by sink DUTs to this pcap file")
	resources := fs.Bool("resources", false, "print estimated data-plane resource usage")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *suiteFile != "" {
		if *simWorkers < 0 {
			fmt.Fprintf(stderr, "hypertester: -simworkers %d is negative\n", *simWorkers)
			return 2
		}
		return runSuite(*suiteFile, *resultsFile, *simWorkers, stdout, stderr)
	}

	if *taskFile == "" {
		fmt.Fprintln(stderr, "hypertester: -task or -suite is required")
		fs.Usage()
		return 2
	}
	rates, err := parsePorts(*ports)
	if err != nil {
		fmt.Fprintf(stderr, "hypertester: %v\n", err)
		return 2
	}
	if err := validateTaskFlags(*dutKind, *duration); err != nil {
		fmt.Fprintf(stderr, "hypertester: %v\n", err)
		return 2
	}
	src, err := os.ReadFile(*taskFile)
	if err != nil {
		fmt.Fprintf(stderr, "hypertester: read task: %v\n", err)
		return 2
	}

	ht := hypertester.New(hypertester.Config{Ports: rates, Seed: *seed})
	name := strings.TrimSuffix(filepath.Base(*taskFile), filepath.Ext(*taskFile))
	if err := ht.LoadTaskSource(name, string(src)); err != nil {
		fmt.Fprintf(stderr, "hypertester: compile: %v\n", err)
		return 2
	}

	if *dumpP4 {
		fmt.Fprint(stdout, ht.GeneratedP4())
		return 0
	}
	if *dumpP416 {
		fmt.Fprint(stdout, p4ir.PrintP416(ht.Program.P4))
		return 0
	}
	if *resources {
		fmt.Fprintf(stdout, "resources (%% of switch.p4): %v\n", ht.Resources())
		return 0
	}

	// Wire every port to its own instance of the chosen DUT.
	sinks := make([]*testbed.Sink, len(rates))
	var farm *testbed.HTTPServerFarm
	var target *testbed.ScanTarget
	for i, g := range rates {
		switch *dutKind {
		case "sink":
			sinks[i] = testbed.NewSink(ht.Sim, fmt.Sprintf("sink%d", i), g)
			if *pcapOut != "" {
				sinks[i].EnableCapture(1 << 20)
			}
			testbed.Connect(ht.Sim, ht.Port(i), sinks[i].Iface, testbed.DefaultCableDelay)
		case "reflector":
			r := testbed.NewReflector(ht.Sim, fmt.Sprintf("refl%d", i), g)
			testbed.Connect(ht.Sim, ht.Port(i), r.Iface, testbed.DefaultCableDelay)
		case "httpfarm":
			farm = testbed.NewHTTPServerFarm(ht.Sim, fmt.Sprintf("farm%d", i), g)
			testbed.Connect(ht.Sim, ht.Port(i), farm.Iface, testbed.DefaultCableDelay)
		case "scantarget":
			target = testbed.NewScanTarget(ht.Sim, fmt.Sprintf("net%d", i), g)
			testbed.Connect(ht.Sim, ht.Port(i), target.Iface, testbed.DefaultCableDelay)
		}
	}

	if err := ht.Start(); err != nil {
		fmt.Fprintf(stderr, "hypertester: %v\n", err)
		return 1
	}
	ht.RunFor(netsim.Duration(duration.Nanoseconds()) * netsim.Nanosecond)

	fmt.Fprintf(stdout, "task %q ran for %v of virtual time\n\n", name, *duration)
	for _, tmpl := range ht.Program.Templates {
		fmt.Fprintf(stdout, "trigger %s: fired %d times\n", tmpl.Trigger.Name, ht.Sender.FiredCount(tmpl.ID))
	}
	fmt.Fprintln(stdout)
	for _, rep := range ht.Reports() {
		fmt.Fprintf(stdout, "query %s (%s): %d matches, %d bytes\n", rep.Query, rep.Kind, rep.Matches, rep.Bytes)
		if rep.Kind == "distinct" {
			fmt.Fprintf(stdout, "  distinct keys: %d\n", rep.Distinct)
		}
		if rep.DelaySamples > 0 {
			fmt.Fprintf(stdout, "  delay: mean %.1fns min %.1fns max %.1fns over %d samples\n",
				rep.DelayMeanNs, rep.DelayMinNs, rep.DelayMaxNs, rep.DelaySamples)
		}
		if len(rep.Results) > 0 && len(rep.Results) <= 10 {
			for _, r := range rep.Results {
				fmt.Fprintf(stdout, "  key %v -> %d\n", r.Key, r.Value)
			}
		} else if len(rep.Results) > 10 {
			fmt.Fprintf(stdout, "  (%d keys; first: %v -> %d)\n",
				len(rep.Results), rep.Results[0].Key, rep.Results[0].Value)
		}
	}
	if *dutKind == "sink" {
		fmt.Fprintln(stdout)
		for i, s := range sinks {
			if s != nil {
				fmt.Fprintf(stdout, "port %d sink: %.2f Gbps, %.2f Mpps\n",
					i, s.ThroughputGbps(), s.RatePps()/1e6)
			}
		}
		if *pcapOut != "" {
			var frames []testbed.CapturedFrame
			for _, s := range sinks {
				if s != nil {
					frames = append(frames, s.Captured()...)
				}
			}
			f, err := os.Create(*pcapOut)
			if err != nil {
				fmt.Fprintf(stderr, "hypertester: pcap: %v\n", err)
				return 1
			}
			defer f.Close()
			if err := testbed.WritePcap(f, frames); err != nil {
				fmt.Fprintf(stderr, "hypertester: pcap: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %d frames to %s\n", len(frames), *pcapOut)
		}
	}
	if farm != nil {
		fmt.Fprintf(stdout, "\nHTTP farm: %d handshakes, %d requests, %d closed\n",
			farm.Handshakes, farm.Requests, farm.Closed)
	}
	if target != nil {
		fmt.Fprintf(stdout, "\nscan target: %d probes, %d SYN+ACK, %d RST\n",
			target.ProbesSeen, target.SynAcksSent, target.RstsSent)
	}
	return 0
}

// parsePorts parses the -ports list, rejecting rates that would configure a
// nonsense switch (non-positive, NaN, infinite).
func parsePorts(s string) ([]float64, error) {
	var rates []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		g, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad port rate %q", p)
		}
		if math.IsNaN(g) || math.IsInf(g, 0) || g <= 0 {
			return nil, fmt.Errorf("port rate %q must be a positive, finite Gbps value", p)
		}
		rates = append(rates, g)
	}
	return rates, nil
}

// validateTaskFlags rejects single-task invocations that would run a
// nonsense simulation.
func validateTaskFlags(dut string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("duration %v must be positive", d)
	}
	for _, k := range taskDUTKinds {
		if k == dut {
			return nil
		}
	}
	return fmt.Errorf("unknown DUT kind %q (want one of %s)", dut, strings.Join(taskDUTKinds, ", "))
}

// runSuite loads and runs a scenario suite, printing per-scenario pass/fail
// and optionally writing the machine-readable results file.
func runSuite(path, resultsPath string, workers int, stdout, stderr io.Writer) int {
	suite, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(stderr, "hypertester: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "suite %q: %d scenarios", suite.Name, len(suite.Scenarios))
	if workers > 1 {
		fmt.Fprintf(stdout, " (parallel engine, %d workers)", workers)
	}
	fmt.Fprintln(stdout)

	res := scenario.RunSuite(suite, workers)
	for _, sc := range res.Scenarios {
		verdict := "PASS"
		if sc.Err != "" || !sc.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(stdout, "%-6s %s (%d/%d checks)\n", verdict, sc.Name, sc.Passed, sc.Passed+sc.Failed)
		if sc.Err != "" {
			fmt.Fprintf(stdout, "       error: %s\n", sc.Err)
		}
		for _, c := range sc.Checks {
			if !c.Pass {
				fmt.Fprintf(stdout, "       check %q: got %s, %s\n", c.Name, c.Got, c.Detail)
			}
		}
	}
	fmt.Fprintf(stdout, "suite %q: %d passed, %d failed\n", res.Suite, res.Passed, res.Failed)

	if resultsPath != "" {
		data, err := res.Encode()
		if err != nil {
			fmt.Fprintf(stderr, "hypertester: encode results: %v\n", err)
			return 1
		}
		if err := os.WriteFile(resultsPath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "hypertester: write results: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "results written to %s\n", resultsPath)
	}
	if !res.Pass {
		return 1
	}
	return 0
}
