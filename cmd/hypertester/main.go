// Command hypertester is the operator CLI: it loads a testing task written
// in the NTAPI text format (§4), deploys it on the simulated programmable
// switch, runs it against a chosen device under test, and prints the query
// reports — the §5.4 workflow end to end.
//
// Usage:
//
//	hypertester -task webtest.nt -dut httpfarm -duration 20ms
//	hypertester -task throughput.nt -p4        # dump the generated P4
//
// Devices under test: sink (count only), reflector (bounce traffic back),
// httpfarm (stateful TCP/HTTP servers), scantarget (a probeable address
// space).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/testbed"
)

func main() {
	taskFile := flag.String("task", "", "NTAPI task file (.nt)")
	ports := flag.String("ports", "100", "comma-separated port rates in Gbps")
	duration := flag.Duration("duration", 5*time.Millisecond, "virtual run duration")
	dutKind := flag.String("dut", "sink", "device under test: sink|reflector|httpfarm|scantarget")
	dumpP4 := flag.Bool("p4", false, "print the generated P4-14 program and exit")
	dumpP416 := flag.Bool("p4_16", false, "print the generated P4-16 (TNA) program and exit")
	pcapOut := flag.String("pcap", "", "write frames received by sink DUTs to this pcap file")
	resources := flag.Bool("resources", false, "print estimated data-plane resource usage")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *taskFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*taskFile)
	if err != nil {
		log.Fatalf("read task: %v", err)
	}

	var rates []float64
	for _, p := range strings.Split(*ports, ",") {
		g, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("bad port rate %q", p)
		}
		rates = append(rates, g)
	}

	ht := hypertester.New(hypertester.Config{Ports: rates, Seed: *seed})
	name := strings.TrimSuffix(filepath.Base(*taskFile), filepath.Ext(*taskFile))
	if err := ht.LoadTaskSource(name, string(src)); err != nil {
		log.Fatalf("compile: %v", err)
	}

	if *dumpP4 {
		fmt.Print(ht.GeneratedP4())
		return
	}
	if *dumpP416 {
		fmt.Print(p4ir.PrintP416(ht.Program.P4))
		return
	}
	if *resources {
		fmt.Printf("resources (%% of switch.p4): %v\n", ht.Resources())
		return
	}

	// Wire every port to its own instance of the chosen DUT.
	sinks := make([]*testbed.Sink, len(rates))
	var farm *testbed.HTTPServerFarm
	var target *testbed.ScanTarget
	for i, g := range rates {
		switch *dutKind {
		case "sink":
			sinks[i] = testbed.NewSink(ht.Sim, fmt.Sprintf("sink%d", i), g)
			if *pcapOut != "" {
				sinks[i].EnableCapture(1 << 20)
			}
			testbed.Connect(ht.Sim, ht.Port(i), sinks[i].Iface, testbed.DefaultCableDelay)
		case "reflector":
			r := testbed.NewReflector(ht.Sim, fmt.Sprintf("refl%d", i), g)
			testbed.Connect(ht.Sim, ht.Port(i), r.Iface, testbed.DefaultCableDelay)
		case "httpfarm":
			farm = testbed.NewHTTPServerFarm(ht.Sim, fmt.Sprintf("farm%d", i), g)
			testbed.Connect(ht.Sim, ht.Port(i), farm.Iface, testbed.DefaultCableDelay)
		case "scantarget":
			target = testbed.NewScanTarget(ht.Sim, fmt.Sprintf("net%d", i), g)
			testbed.Connect(ht.Sim, ht.Port(i), target.Iface, testbed.DefaultCableDelay)
		default:
			log.Fatalf("unknown DUT kind %q", *dutKind)
		}
	}

	if err := ht.Start(); err != nil {
		log.Fatal(err)
	}
	ht.RunFor(netsim.Duration(duration.Nanoseconds()) * netsim.Nanosecond)

	fmt.Printf("task %q ran for %v of virtual time\n\n", name, *duration)
	for _, tmpl := range ht.Program.Templates {
		fmt.Printf("trigger %s: fired %d times\n", tmpl.Trigger.Name, ht.Sender.FiredCount(tmpl.ID))
	}
	fmt.Println()
	for _, rep := range ht.Reports() {
		fmt.Printf("query %s (%s): %d matches, %d bytes\n", rep.Query, rep.Kind, rep.Matches, rep.Bytes)
		if rep.Kind == "distinct" {
			fmt.Printf("  distinct keys: %d\n", rep.Distinct)
		}
		if rep.DelaySamples > 0 {
			fmt.Printf("  delay: mean %.1fns min %.1fns max %.1fns over %d samples\n",
				rep.DelayMeanNs, rep.DelayMinNs, rep.DelayMaxNs, rep.DelaySamples)
		}
		if len(rep.Results) > 0 && len(rep.Results) <= 10 {
			for _, r := range rep.Results {
				fmt.Printf("  key %v -> %d\n", r.Key, r.Value)
			}
		} else if len(rep.Results) > 10 {
			fmt.Printf("  (%d keys; first: %v -> %d)\n",
				len(rep.Results), rep.Results[0].Key, rep.Results[0].Value)
		}
	}
	if *dutKind == "sink" {
		fmt.Println()
		for i, s := range sinks {
			if s != nil {
				fmt.Printf("port %d sink: %.2f Gbps, %.2f Mpps\n",
					i, s.ThroughputGbps(), s.RatePps()/1e6)
			}
		}
		if *pcapOut != "" {
			var frames []testbed.CapturedFrame
			for _, s := range sinks {
				if s != nil {
					frames = append(frames, s.Captured()...)
				}
			}
			f, err := os.Create(*pcapOut)
			if err != nil {
				log.Fatalf("pcap: %v", err)
			}
			defer f.Close()
			if err := testbed.WritePcap(f, frames); err != nil {
				log.Fatalf("pcap: %v", err)
			}
			fmt.Printf("wrote %d frames to %s\n", len(frames), *pcapOut)
		}
	}
	if farm != nil {
		fmt.Printf("\nHTTP farm: %d handshakes, %d requests, %d closed\n",
			farm.Handshakes, farm.Requests, farm.Closed)
	}
	if target != nil {
		fmt.Printf("\nscan target: %d probes, %d SYN+ACK, %d RST\n",
			target.ProbesSeen, target.SynAcksSent, target.RstsSent)
	}
}
