// Command htbench regenerates every table and figure of the paper's
// evaluation (§7) on the simulated testbed and prints the results in
// paper-style rows.
//
// Usage:
//
//	htbench [-quick] [-seed N] [-run substr]
//
// -run selects experiments whose ID contains the substring (e.g. "Fig. 11"
// or "Table"); the default runs everything in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hypertester/hypertester/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink measurement windows and sweeps")
	seed := flag.Int64("seed", 1, "experiment seed")
	run := flag.String("run", "", "only run experiments whose ID contains this substring")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	type entry struct {
		id string
		fn func(experiments.Config) *experiments.Result
	}
	all := []entry{
		{"Table 5", experiments.Table5LoC},
		{"Fig. 9", experiments.Fig9SinglePort},
		{"Fig. 10", experiments.Fig10MultiPort},
		{"Fig. 11", experiments.Fig11RateControl40G},
		{"Fig. 12", experiments.Fig12RateControl100G},
		{"Fig. 13", experiments.Fig13RandomQQ},
		{"Fig. 14", experiments.Fig14Accelerator},
		{"Fig. 15", experiments.Fig15Replicator},
		{"Fig. 16", experiments.Fig16StatCollection},
		{"Fig. 17", experiments.Fig17ExactMatch},
		{"Table 6", experiments.Table6Cost},
		{"Table 7", experiments.Table7Resources},
		{"Table 8", experiments.Table8SynFlood},
		{"Fig. 18", experiments.Fig18DelayTesting},
		{"Ablation A", experiments.AblationSketchAccuracy},
		{"Ablation B", experiments.AblationCuckooOccupancy},
		{"Ablation C", experiments.AblationTemplateAmplification},
		{"Case study", experiments.CaseWebScale},
	}
	ran := 0
	for _, e := range all {
		if *run != "" && !strings.Contains(e.id, *run) {
			continue
		}
		start := time.Now()
		res := e.fn(cfg)
		ran++
		fmt.Println(res.String())
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run %q\n", *run)
		os.Exit(1)
	}
}
