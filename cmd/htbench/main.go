// Command htbench regenerates every table and figure of the paper's
// evaluation (§7) on the simulated testbed, prints the results in
// paper-style rows, and writes a machine-readable BENCH_results.json so the
// suite's performance trajectory can be tracked across commits.
//
// Usage:
//
//	htbench [-quick] [-seed N] [-run substr] [-workers N] [-simworkers N]
//	        [-json file] [-trace file] [-cpuprofile file] [-memprofile file]
//
// -run selects experiments whose ID contains the substring (e.g. "Fig. 11"
// or "Table"); the default runs everything in paper order. Experiments fan
// out across -workers goroutines (default GOMAXPROCS; results are
// bit-identical to -workers 1 — each experiment owns its simulator and
// seeded RNG streams). -simworkers > 1 additionally parallelizes INSIDE
// each experiment: device topologies run on the conservative parallel
// discrete-event engine (one logical process per device) and CPU-bound
// sweeps on a same-width pool, again with bit-identical results.
// Per-experiment allocation counts are only recorded with -workers 1 and
// -simworkers 1, where the runtime's allocation counters are attributable
// to a single experiment at a time.
//
// -trace runs the observability sample workload (internal/experiments.
// TraceSample) after the measured suite, writes its per-packet lifecycle
// trace as Chrome trace-event JSON loadable in Perfetto, and stamps the
// run's metrics snapshot into BENCH_results.json under "obs". The measured
// suite itself always runs untraced, so trace collection never skews the
// wall clocks perfguard gates on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/experiments"
	"github.com/hypertester/hypertester/internal/netsim"
)

// expReport is one experiment's entry in BENCH_results.json.
type expReport struct {
	ID            string  `json:"id"`
	Title         string  `json:"title"`
	HeadlineValue float64 `json:"headline_value"`
	HeadlineUnit  string  `json:"headline_unit"`
	WallSeconds   float64 `json:"wall_s"`
	NsPerOp       float64 `json:"ns_op"`
	// AllocsPerOp is the experiment's heap-allocation count; present only
	// when the suite ran with -workers 1.
	AllocsPerOp *uint64 `json:"allocs_op,omitempty"`
}

// benchReport is the top-level BENCH_results.json document.
type benchReport struct {
	GeneratedUnix int64 `json:"generated_unix"`
	// GitRev is the VCS revision the binary was built from ("unknown" when
	// no build info or git checkout is available), so a results file is
	// attributable to a commit.
	GitRev string `json:"git_rev"`
	// Scheduler and TableImpl tag the core data-structure implementations
	// active for this run; they explain step changes in the trajectory.
	Scheduler        string      `json:"scheduler"`
	TableImpl        string      `json:"table_impl"`
	// Engine is the discrete-event engine the testbeds ran on: the
	// sequential scheduler when SimWorkers <= 1, the parallel LP engine
	// otherwise.
	Engine           string      `json:"engine"`
	Quick            bool        `json:"quick"`
	Seed             int64       `json:"seed"`
	Workers          int         `json:"workers"`
	SimWorkers       int         `json:"sim_workers"`
	GOMAXPROCS       int         `json:"gomaxprocs"`
	TotalWallSeconds float64     `json:"total_wall_s"`
	// TracedSuite records whether per-packet tracing was enabled during the
	// measured suite. htbench always measures untraced — the -trace sample
	// runs after measurement — so this is false here; the field exists so
	// perfguard can reject results files whose timings include tracing
	// overhead.
	TracedSuite bool `json:"traced_suite"`
	// Obs is the observability snapshot of the post-suite traced sample run
	// (tester switch counters, per-sink traffic, scheduler and LP-engine
	// stats, trace stream sizes); present only with -trace.
	Obs         map[string]any `json:"obs,omitempty"`
	Experiments []expReport    `json:"experiments"`
}

// gitRev resolves the source revision: stamped VCS build info first (present
// for installed builds), then a live `git rev-parse` (the common `go run`
// path), else "unknown".
func gitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// engineName tags which discrete-event engine ran the testbeds.
func engineName(simWorkers int) string {
	if simWorkers > 1 {
		return netsim.EngineImpl
	}
	return "sequential"
}

func main() {
	quick := flag.Bool("quick", false, "shrink measurement windows and sweeps")
	seed := flag.Int64("seed", 1, "experiment seed")
	run := flag.String("run", "", "only run experiments whose ID contains this substring")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "experiment worker-pool size")
	simWorkers := flag.Int("simworkers", 1, "per-experiment worker budget: >1 runs testbeds on the parallel LP engine")
	jsonPath := flag.String("json", "BENCH_results.json", "write machine-readable results here (empty to disable)")
	tracePath := flag.String("trace", "", "after the suite, run the traced sample workload and write a Perfetto-loadable Chrome trace JSON here")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here (captured after the run)")
	flag.Parse()

	if *simWorkers < 1 {
		*simWorkers = 1
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, SimWorkers: *simWorkers}

	var specs []experiments.Spec
	for _, sp := range experiments.Specs() {
		if *run == "" || strings.Contains(sp.ID, *run) {
			specs = append(specs, sp)
		}
	}
	if len(specs) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run %q\n", *run)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *workers < 1 {
		*workers = 1
	}
	sequential := *workers == 1 && *simWorkers == 1

	// Wrap each spec to record its own wall clock (and, when running
	// sequentially, its allocation count) without perturbing the runner.
	reports := make([]expReport, len(specs))
	wrapped := make([]experiments.Spec, len(specs))
	var mu sync.Mutex // guards ReadMemStats bracketing in sequential mode
	for i, sp := range specs {
		i, sp := i, sp
		wrapped[i] = experiments.Spec{ID: sp.ID, Fn: func(c experiments.Config) *experiments.Result {
			var m0 runtime.MemStats
			if sequential {
				mu.Lock()
				runtime.ReadMemStats(&m0)
			}
			t0 := time.Now()
			res := sp.Fn(c)
			wall := time.Since(t0)
			reports[i].WallSeconds = wall.Seconds()
			reports[i].NsPerOp = float64(wall.Nanoseconds())
			if sequential {
				var m1 runtime.MemStats
				runtime.ReadMemStats(&m1)
				allocs := m1.Mallocs - m0.Mallocs
				reports[i].AllocsPerOp = &allocs
				mu.Unlock()
			}
			return res
		}}
	}

	prevMaxProcs := runtime.GOMAXPROCS(0)
	if *workers < prevMaxProcs {
		// Bound the pool by shrinking GOMAXPROCS for the run; Run sizes
		// its pool from it.
		runtime.GOMAXPROCS(*workers)
		defer runtime.GOMAXPROCS(prevMaxProcs)
	}

	t0 := time.Now()
	results := experiments.Run(cfg, wrapped)
	total := time.Since(t0)

	for i, res := range results {
		reports[i].ID = res.ID
		reports[i].Title = res.Title
		v, unit, err := experiments.Headline(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "headline: %v\n", err)
			os.Exit(1)
		}
		reports[i].HeadlineValue = v
		reports[i].HeadlineUnit = unit
		fmt.Println(res.String())
		fmt.Printf("(%.1fs)\n\n", reports[i].WallSeconds)
	}
	fmt.Printf("%d experiments in %.1fs (%d workers)\n", len(results), total.Seconds(), *workers)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	// The traced sample runs after the measured suite so tracing overhead
	// never reaches the wall clocks perfguard gates on.
	var obsSnapshot map[string]any
	if *tracePath != "" {
		ts, reg, err := experiments.TraceSample(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := ts.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		obsSnapshot = reg.Snapshot()
		obsSnapshot["trace.streams"] = len(ts.Traces())
		obsSnapshot["trace.records"] = ts.Len()
		obsSnapshot["trace.dropped"] = ts.Dropped()
		fmt.Printf("wrote %s (%d records across %d streams)\n", *tracePath, ts.Len(), len(ts.Traces()))
	}

	if *jsonPath != "" {
		doc := benchReport{
			GeneratedUnix:    time.Now().Unix(),
			GitRev:           gitRev(),
			Scheduler:        netsim.SchedulerImpl,
			TableImpl:        asic.TableImpl,
			Engine:           engineName(*simWorkers),
			Quick:            *quick,
			Seed:             *seed,
			Workers:          *workers,
			SimWorkers:       *simWorkers,
			GOMAXPROCS:       prevMaxProcs,
			TotalWallSeconds: total.Seconds(),
			TracedSuite:      false, // the measured suite above never traces
			Obs:              obsSnapshot,
			Experiments:      reports,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
