// Command perfguard compares a freshly generated htbench results file
// against the committed baseline BENCH_results.json and fails when the suite
// regressed. It enforces two properties:
//
//   - correctness: every experiment's headline value must be bit-identical
//     to the baseline — the simulator is deterministic, so any drift means a
//     behavioral change, not noise;
//   - performance: total wall time must stay within -tolerance (default
//     15%) of the baseline, and — when both files carry per-experiment
//     allocation counts for the same sim_workers setting — each
//     experiment's allocs_op must stay within -allocs-tolerance (default
//     10%, plus a small absolute slack for tiny experiments) of its
//     baseline. Both budgets are disabled-tracing budgets: a fresh results
//     file whose measured suite ran with per-packet tracing enabled
//     (traced_suite) is rejected as non-comparable.
//
// Usage:
//
//	perfguard -baseline BENCH_results.json -fresh /tmp/bench.json
//
// Exit status is non-zero on any violation, so CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type expReport struct {
	ID            string  `json:"id"`
	HeadlineValue float64 `json:"headline_value"`
	HeadlineUnit  string  `json:"headline_unit"`
	WallSeconds   float64 `json:"wall_s"`
	AllocsPerOp   *uint64 `json:"allocs_op,omitempty"`
}

type benchReport struct {
	GitRev           string      `json:"git_rev"`
	Engine           string      `json:"engine"`
	Quick            bool        `json:"quick"`
	Seed             int64       `json:"seed"`
	SimWorkers       int         `json:"sim_workers"`
	TotalWallSeconds float64     `json:"total_wall_s"`
	TracedSuite      bool        `json:"traced_suite"`
	Experiments      []expReport `json:"experiments"`
}

func load(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_results.json", "committed baseline results")
	freshPath := flag.String("fresh", "", "freshly generated results to check (required)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional wall-time regression")
	allocsTolerance := flag.Float64("allocs-tolerance", 0.10, "allowed fractional per-experiment allocation regression")
	flag.Parse()

	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "perfguard: -fresh is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfguard: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfguard: %v\n", err)
		os.Exit(2)
	}
	if base.Quick != fresh.Quick || base.Seed != fresh.Seed {
		fmt.Fprintf(os.Stderr, "perfguard: config mismatch: baseline quick=%v seed=%d, fresh quick=%v seed=%d\n",
			base.Quick, base.Seed, fresh.Quick, fresh.Seed)
		os.Exit(2)
	}
	// The wall and allocation budgets are disabled-tracing budgets: htbench
	// measures with tracing off (the -trace sample runs after measurement).
	// A results file whose measured suite ran traced is not comparable to
	// the baseline and is rejected outright.
	if fresh.TracedSuite {
		fmt.Fprintln(os.Stderr, "perfguard: fresh results were measured with tracing enabled; re-run htbench (tracing is sampled post-suite)")
		os.Exit(2)
	}

	baseByID := make(map[string]expReport, len(base.Experiments))
	order := make([]string, 0, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
		order = append(order, e.ID)
	}

	violations := 0
	seen := make(map[string]bool, len(fresh.Experiments))
	for _, f := range fresh.Experiments {
		seen[f.ID] = true
		b, ok := baseByID[f.ID]
		if !ok {
			// New experiments are fine; they just have no baseline yet.
			fmt.Printf("perfguard: %-12s new experiment (no baseline)\n", f.ID)
			continue
		}
		if f.HeadlineValue != b.HeadlineValue || f.HeadlineUnit != b.HeadlineUnit {
			fmt.Printf("perfguard: %-12s HEADLINE DRIFT: %v %s -> %v %s\n",
				f.ID, b.HeadlineValue, b.HeadlineUnit, f.HeadlineValue, f.HeadlineUnit)
			violations++
		}
		// Allocation gate: only when both runs attribute allocations to
		// single experiments under the same engine configuration (counts
		// from parallel runs mix experiments and are not comparable).
		if b.AllocsPerOp != nil && f.AllocsPerOp != nil && base.SimWorkers == fresh.SimWorkers {
			// The absolute slack absorbs runtime-internal allocations
			// (GC metadata, pool repopulation) in tiny experiments.
			const slack = 2000
			limit := uint64(float64(*b.AllocsPerOp)*(1+*allocsTolerance)) + slack
			if *f.AllocsPerOp > limit {
				fmt.Printf("perfguard: %-12s ALLOCS REGRESSION: %d -> %d allocs/op (limit %d)\n",
					f.ID, *b.AllocsPerOp, *f.AllocsPerOp, limit)
				violations++
			}
		}
	}
	for _, id := range order {
		if !seen[id] {
			fmt.Printf("perfguard: %-12s MISSING from fresh results\n", id)
			violations++
		}
	}

	limit := base.TotalWallSeconds * (1 + *tolerance)
	fmt.Printf("perfguard: wall %.3fs vs baseline %.3fs (limit %.3fs, rev %s)\n",
		fresh.TotalWallSeconds, base.TotalWallSeconds, limit, fresh.GitRev)
	if fresh.TotalWallSeconds > limit {
		fmt.Printf("perfguard: WALL-TIME REGRESSION: %.3fs > %.3fs (+%.0f%% over baseline)\n",
			fresh.TotalWallSeconds, limit, (fresh.TotalWallSeconds/base.TotalWallSeconds-1)*100)
		violations++
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "perfguard: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("perfguard: ok")
}
