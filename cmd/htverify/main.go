// Command htverify runs the path-sensitive symbolic verifier
// (internal/verify) over the 18-program experiment corpus and replays
// every extracted witness packet through both the compiled ASIC plan and
// the naive IR interpreter, diffing the full outcome.
//
// Usage:
//
//	go run ./cmd/htverify                  # whole corpus
//	go run ./cmd/htverify table5_ipscan    # named programs only
//	go run ./cmd/htverify -list            # describe the checkers
//
// Exit status: 0 clean, 1 findings (verifier diagnostics or witness
// divergence), 2 internal error.
package main

import (
	"fmt"
	"os"

	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/experiments"
	"github.com/hypertester/hypertester/internal/lint"
	"github.com/hypertester/hypertester/internal/verify"
)

// corpus returns the experiment programs selected by args (all when empty).
func corpus(args []string) ([]experiments.ProgramSpec, error) {
	specs := experiments.Programs()
	if len(args) == 0 {
		return specs, nil
	}
	byName := map[string]experiments.ProgramSpec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	var out []experiments.ProgramSpec
	for _, name := range args {
		s, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown program %q (the corpus is experiments.Programs)", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// runVerify compiles each program and reports every verifier diagnostic,
// error and warning severity alike.
func runVerify(dir string, args []string) ([]string, error) {
	specs, err := corpus(args)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, spec := range specs {
		prog, err := spec.Compile()
		if err != nil {
			// A compile rejection of a corpus program is itself a finding:
			// the corpus is expected to be feasible.
			lines = append(lines, fmt.Sprintf("%s: %v", spec.Name, err))
			continue
		}
		rep := compiler.AnalyzePlan(prog, verify.Options{})
		for _, d := range rep.Diagnostics {
			lines = append(lines, fmt.Sprintf("%s: %s", spec.Name, d))
		}
		if rep.Truncated {
			lines = append(lines, fmt.Sprintf("%s: walk truncated at %d paths; proofs degraded", spec.Name, rep.Paths))
		}
	}
	return lines, nil
}

// runDifferential extracts witness packets per program and replays each
// through the compiled plan and the naive interpreter.
func runDifferential(dir string, args []string) ([]string, error) {
	specs, err := corpus(args)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, spec := range specs {
		prog, err := spec.Compile()
		if err != nil {
			continue // already reported by the verify checker
		}
		rep := compiler.AnalyzePlan(prog, verify.Options{Witnesses: true})
		if len(rep.Witnesses) == 0 {
			lines = append(lines, fmt.Sprintf("%s: no witnesses extracted", spec.Name))
			continue
		}
		for i := range rep.Witnesses {
			wit := rep.Witnesses[i]
			entries := compiler.SyntheticEntries(prog.P4, wit)
			got, err := compiler.ReplayPlan(prog, &wit, entries)
			if err != nil {
				return nil, fmt.Errorf("%s witness %d: %w", spec.Name, i, err)
			}
			in := &verify.Interp{Prog: prog.P4, Entries: entries}
			want := in.Run(wit)
			if got.Canonical() != want.Canonical() {
				lines = append(lines, fmt.Sprintf(
					"%s witness %d diverges (path %v):\n--- compiled ---\n%s--- naive ---\n%s",
					spec.Name, i, wit.Path, got.Canonical(), want.Canonical()))
			}
		}
	}
	return lines, nil
}

func main() {
	tool := &lint.Tool{
		Name: "htverify",
		Doc:  "symbolically verify the experiment corpus and replay witness packets differentially",
		Checkers: []lint.Checker{
			{
				Name: "verify",
				Doc:  "path-sensitive symbolic verification of every compiled plan",
				Run:  runVerify,
			},
			{
				Name: "differential",
				Doc:  "witness-packet replay: compiled ASIC plan vs naive IR interpreter",
				Run:  runDifferential,
			},
		},
	}
	os.Exit(tool.Main(os.Args[1:]))
}
