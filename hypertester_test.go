package hypertester

import (
	"fmt"
	"math"
	"testing"

	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/stats"
	"github.com/hypertester/hypertester/internal/testbed"
)

const throughputTask = `
# Table 3: throughput testing
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set([loop, length], [0, 64])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
`

func TestLineRateGeneration(t *testing.T) {
	// The headline capability: a single 100G port generates 64-byte
	// packets at line rate (Fig. 9a).
	ht := New(Config{Ports: []float64{100}, Seed: 1})
	if err := ht.LoadTaskSource("throughput", throughputTask); err != nil {
		t.Fatal(err)
	}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	if err := ht.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the accelerator fill (~10us), then measure 200us.
	ht.RunFor(20 * netsim.Microsecond)
	sink.Reset()
	q1Before, _ := ht.Report("Q1")
	ht.RunFor(200 * netsim.Microsecond)

	if g := sink.ThroughputGbps(); g < 97 || g > 101 {
		t.Fatalf("throughput = %.2f Gbps, want ~100 (line rate)", g)
	}
	// Every generated packet carries the trigger's values.
	var s netproto.Stack
	sinkOK := sink.Packets
	if sinkOK == 0 {
		t.Fatal("no packets")
	}
	sink.OnPacket = nil
	_ = s

	// Q1 (sent) and Q2 (received: nothing comes back) reports.
	q1, ok := ht.Report("Q1")
	if !ok || len(q1.Results) != 1 {
		t.Fatalf("Q1 report: %+v", q1)
	}
	if q1.Results[0].Value != q1.Matches*64 {
		t.Fatalf("Q1 sum = %d, want matches*64 = %d", q1.Results[0].Value, q1.Matches*64)
	}
	q2, _ := ht.Report("Q2")
	if q2.Matches != 0 {
		t.Fatalf("Q2 saw %d received packets, want 0", q2.Matches)
	}
	// Over the measurement window, Q1's count moved by what the sink saw
	// (minus in-flight tail).
	window := q1.Matches - q1Before.Matches
	diff := math.Abs(float64(window) - float64(sink.Packets))
	if diff > float64(window)/50 {
		t.Fatalf("Q1 window %d vs sink %d differ too much", window, sink.Packets)
	}
}

func TestRateControlAccuracy(t *testing.T) {
	// 1 Mpps rate control: inter-departure error must sit at the
	// template-arrival granularity (single-digit ns), an order below
	// MoonGen's (Fig. 11).
	ht := New(Config{Ports: []float64{100}, Seed: 2})
	err := ht.LoadTaskSource("rate", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(interval, 1us)
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	sink.RecordTimestamps = true
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(50 * netsim.Microsecond)
	sink.Reset()
	ht.RunFor(5 * netsim.Millisecond)

	pps := sink.RatePps()
	if math.Abs(pps-1e6) > 2e4 {
		t.Fatalf("rate = %.0f pps, want ~1e6", pps)
	}
	e := stats.InterDepartureErrors(sink.Timestamps, 1000)
	if e.MAE > 10 {
		t.Fatalf("MAE = %.2f ns, want single-digit (template-arrival granularity)", e.MAE)
	}
	if e.RMSE > 15 {
		t.Fatalf("RMSE = %.2f ns", e.RMSE)
	}
}

func TestEditorFieldSweeps(t *testing.T) {
	// range + list mods must appear in the generated packets, zipped by
	// packet ID.
	ht := New(Config{Ports: []float64{100}, Seed: 3})
	err := ht.LoadTaskSource("sweep", `
T1 = trigger()
    .set([dip, sip, proto], [9.9.9.9, 1.1.0.1, udp])
    .set(sport, range(1000, 1003, 1))
    .set(dport, [80, 81])
    .set(interval, 1us)
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	type combo struct{ sp, dp uint16 }
	seen := map[combo]int{}
	var order []combo
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	var st netproto.Stack
	sink.OnPacket = func(pkt *netproto.Packet, at netsim.Time) {
		if err := st.Decode(pkt.Data); err == nil {
			c := combo{st.UDP.SrcPort, st.UDP.DstPort}
			seen[c]++
			if len(order) < 8 {
				order = append(order, c)
			}
		}
	}
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(100 * netsim.Microsecond)

	want := []combo{{1000, 80}, {1001, 81}, {1002, 80}, {1003, 81}}
	for _, c := range want {
		if seen[c] == 0 {
			t.Fatalf("combo %+v never generated; seen: %v", c, seen)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("saw %d combos, want 4 (zip semantics): %v", len(seen), seen)
	}
	// Sequence follows packet ID order.
	for i, c := range order[:4] {
		if c != want[(int(order[0].sp)-1000+i)%4] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestLoopBoundStopsGeneration(t *testing.T) {
	ht := New(Config{Ports: []float64{100}, Seed: 4})
	err := ht.LoadTaskSource("loop", `
T1 = trigger()
    .set([dip, sip, proto], [9.9.9.9, 1.1.0.1, udp])
    .set(dport, [1, 2, 3, 4, 5])
    .set(loop, 3)
    .set(interval, 500ns)
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(2 * netsim.Millisecond)
	if sink.Packets != 15 {
		t.Fatalf("generated %d packets, want exactly 15 (3 loops x 5)", sink.Packets)
	}
}

func TestMultiPortGeneration(t *testing.T) {
	// Fig. 10a: adding ports multiplies aggregate throughput; each port
	// stays at line rate.
	ht := New(Config{Ports: []float64{100, 100, 100, 100}, Seed: 5})
	err := ht.LoadTaskSource("multi", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(port, [0, 1, 2, 3])
`)
	if err != nil {
		t.Fatal(err)
	}
	sinks := make([]*testbed.Sink, 4)
	for i := range sinks {
		sinks[i] = testbed.NewSink(ht.Sim, "sink", 100)
		testbed.Connect(ht.Sim, ht.Port(i), sinks[i].Iface, 0)
	}
	ht.Start()
	ht.RunFor(20 * netsim.Microsecond)
	for _, s := range sinks {
		s.Reset()
	}
	ht.RunFor(100 * netsim.Microsecond)
	total := 0.0
	for i, s := range sinks {
		g := s.ThroughputGbps()
		if g < 95 || g > 101 {
			t.Fatalf("port %d throughput = %.1f Gbps, want ~100", i, g)
		}
		total += g
	}
	if total < 380 {
		t.Fatalf("aggregate = %.0f Gbps, want ~400 (the testbed headline)", total)
	}
}

const webTask = `
# Table 4 (abridged): stateless web testing
T1 = trigger()
    .set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sport, range(1024, 1087, 1))
    .set(sip, 1.1.0.1)
    .set(interval, 2us)
    .set(loop, 1)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1)
    .set([dip, sip, dport, sport], [Q1.sip, Q1.dip, Q1.sport, Q1.dport])
    .set([proto, flag], [tcp, ACK])
    .set([seq_no, ack_no], [Q1.ack_no, Q1.seq_no + 1])
Q5 = query().filter(tcp_flag == SYN+ACK).reduce(func=sum)
`

func TestWebTestingStatelessConnections(t *testing.T) {
	// End-to-end §5.4: SYN floods out, the server farm answers SYN+ACK,
	// Q1 triggers T2's ACKs statelessly, handshakes complete server-side.
	ht := New(Config{Ports: []float64{100}, Seed: 6})
	if err := ht.LoadTaskSource("web", webTask); err != nil {
		t.Fatal(err)
	}
	farm := testbed.NewHTTPServerFarm(ht.Sim, "farm", 100)
	testbed.Connect(ht.Sim, ht.Port(0), farm.Iface, 0)
	ht.Start()
	ht.RunFor(2 * netsim.Millisecond)

	if farm.SynReceived != 64 {
		t.Fatalf("farm saw %d SYNs, want 64", farm.SynReceived)
	}
	if farm.Handshakes != 64 {
		t.Fatalf("completed %d handshakes, want 64 (stateless ACKs must land)", farm.Handshakes)
	}
	// Q1 captured every SYN+ACK and triggered T2 for each.
	q1, _ := ht.Report("Q1")
	if q1.Matches != 64 {
		t.Fatalf("Q1 matches = %d, want 64", q1.Matches)
	}
	if ht.Sender.FiredCount(2) != 64 {
		t.Fatalf("T2 fired %d, want 64", ht.Sender.FiredCount(2))
	}
	// Q5's reduce counted the SYN+ACKs.
	q5, _ := ht.Report("Q5")
	if q5.Matches != 64 {
		t.Fatalf("Q5 matches = %d, want 64", q5.Matches)
	}
}

func TestDistinctQueryAccuracy(t *testing.T) {
	// An IP-scan-style task: distinct source IPs of responses, exact.
	ht := New(Config{Ports: []float64{100}, Seed: 7})
	err := ht.LoadTaskSource("scan", `
T1 = trigger()
    .set([sip, dport, sport, proto, flag], [1.1.0.1, 80, 1024, tcp, SYN])
    .set(dip, range(184549377, 184549632, 1))
    .set(interval, 200ns)
    .set(loop, 1)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK).distinct(keys={ipv4.sip})
`)
	if err != nil {
		t.Fatal(err)
	}
	target := testbed.NewScanTarget(ht.Sim, "net", 100)
	target.LivePermille = 400
	testbed.Connect(ht.Sim, ht.Port(0), target.Iface, 0)
	ht.Start()
	ht.RunFor(2 * netsim.Millisecond)

	// Ground truth: how many of the probed addresses are live?
	live := 0
	for i := uint32(0); i < 256; i++ {
		if target.Live(netproto.IPv4Addr(184549377 + i)) {
			live++
		}
	}
	if live == 0 {
		t.Fatal("degenerate scan target")
	}
	q1, _ := ht.Report("Q1")
	if q1.Distinct != live {
		t.Fatalf("distinct = %d, want %d (exact, no false positives)", q1.Distinct, live)
	}
}

func TestTaskErrorsSurface(t *testing.T) {
	ht := New(Config{Ports: []float64{100}})
	if err := ht.LoadTaskSource("bad", `T1 = trigger().set(dport, 70000).set(port, 0)`); err == nil {
		t.Fatal("invalid task loaded")
	}
	if err := ht.Start(); err == nil {
		t.Fatal("start without a task succeeded")
	}
}

func TestGeneratedArtifacts(t *testing.T) {
	ht := New(Config{Ports: []float64{100}})
	if err := ht.LoadTaskSource("throughput", throughputTask); err != nil {
		t.Fatal(err)
	}
	if src := ht.GeneratedP4(); len(src) < 100 {
		t.Fatalf("generated P4 too small: %d bytes", len(src))
	}
	res := ht.Resources()
	if res.SALU <= 0 {
		t.Fatalf("resources: %+v", res)
	}
}

func TestReduceSumMatchesTraffic(t *testing.T) {
	// Reduce(sum of pkt_len) over received traffic equals what a
	// reflector bounces back.
	ht := New(Config{Ports: []float64{100}, Seed: 8})
	err := ht.LoadTaskSource("echo", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 5000, 6000])
    .set([interval, loop, length], [1us, 100, 128])
    .set(port, 0)
Q1 = query().map(p -> (pkt_len)).reduce(func=sum)
`)
	if err != nil {
		t.Fatal(err)
	}
	refl := testbed.NewReflector(ht.Sim, "refl", 100)
	testbed.Connect(ht.Sim, ht.Port(0), refl.Iface, 0)
	ht.Start()
	ht.RunFor(2 * netsim.Millisecond)

	q1, _ := ht.Report("Q1")
	if q1.Matches != 100 {
		t.Fatalf("received %d reflections, want 100", q1.Matches)
	}
	var total uint64
	for _, r := range q1.Results {
		total += r.Value
	}
	if total != 100*128 {
		t.Fatalf("reduce sum = %d, want %d", total, 100*128)
	}
	if ntapi.KindReduce != q1.Kind {
		t.Fatalf("kind = %v", q1.Kind)
	}
}

func TestRandomInterDepartureExponential(t *testing.T) {
	// §3.1 names "random inter-departure time" as a generation
	// requirement: exponential intervals give a Poisson probe stream
	// whose inter-departure mean and coefficient of variation (~1)
	// should both be observable at the sink.
	ht := New(Config{Ports: []float64{100}, Seed: 12})
	err := ht.LoadTaskSource("poisson", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(interval, random('E', 2000, 0))
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	sink.RecordTimestamps = true
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(50 * netsim.Microsecond)
	sink.Reset()
	ht.RunFor(20 * netsim.Millisecond)

	gaps := stats.Gaps(sink.Timestamps)
	if len(gaps) < 2000 {
		t.Fatalf("only %d gaps", len(gaps))
	}
	mean := stats.Mean(gaps)
	if mean < 1800 || mean > 2300 {
		t.Fatalf("mean inter-departure %.0fns, want ~2000", mean)
	}
	cv := stats.StdDev(gaps) / mean
	if cv < 0.8 || cv > 1.2 {
		t.Fatalf("coefficient of variation %.2f, want ~1 (exponential)", cv)
	}
}

func TestFixedIntervalHasLowCV(t *testing.T) {
	// Contrast with the exponential case: fixed intervals are nearly
	// deterministic (CV ~ 0).
	ht := New(Config{Ports: []float64{100}, Seed: 12})
	err := ht.LoadTaskSource("cbr", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(interval, 2us)
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	sink.RecordTimestamps = true
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(50 * netsim.Microsecond)
	sink.Reset()
	ht.RunFor(5 * netsim.Millisecond)
	gaps := stats.Gaps(sink.Timestamps)
	cv := stats.StdDev(gaps) / stats.Mean(gaps)
	if cv > 0.05 {
		t.Fatalf("CBR coefficient of variation %.3f, want ~0", cv)
	}
}

func TestICMPPingTask(t *testing.T) {
	// ICMP echo templates: ping probes bounce off a reflector and the
	// received query counts the echoes.
	ht := New(Config{Ports: []float64{100}, Seed: 13})
	err := ht.LoadTaskSource("ping", `
T1 = trigger()
    .set([dip, sip, proto], [9.9.9.9, 1.1.0.1, icmp])
    .set(icmp.type, 8)
    .set(icmp.seq, range(0, 999, 1))
    .set(interval, 1us)
    .set(loop, 1)
    .set(port, 0)
Q1 = query().filter(icmp.type == 8).reduce(func=count, keys={ipv4.sip})
`)
	if err != nil {
		t.Fatal(err)
	}
	refl := testbed.NewReflector(ht.Sim, "refl", 100)
	testbed.Connect(ht.Sim, ht.Port(0), refl.Iface, 0)
	ht.Start()
	ht.RunFor(5 * netsim.Millisecond)

	if refl.Reflected != 1000 {
		t.Fatalf("reflector saw %d pings, want 1000", refl.Reflected)
	}
	q1, _ := ht.Report("Q1")
	if q1.Matches != 1000 {
		t.Fatalf("received %d echoes, want 1000", q1.Matches)
	}
}

func TestLossyLinkMeasurement(t *testing.T) {
	// Loss measurement end to end: sent vs received reduce queries
	// disagree by the dropped packets.
	ht := New(Config{Ports: []float64{100}, Seed: 14})
	err := ht.LoadTaskSource("loss", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(interval, 500ns)
    .set(loop, 1)
    .set(ipv4.id, range(0, 4999, 1))
    .set(port, 0)
Q1 = query(T1).reduce(func=count)
Q2 = query().reduce(func=count)
`)
	if err != nil {
		t.Fatal(err)
	}
	refl := testbed.NewReflector(ht.Sim, "refl", 100)
	link := testbed.ConnectLossy(ht.Sim, ht.Port(0), refl.Iface, 0, 0.05, 9)
	ht.Start()
	ht.RunFor(10 * netsim.Millisecond)

	q1, _ := ht.Report("Q1")
	q2, _ := ht.Report("Q2")
	if q1.Matches != 5000 {
		t.Fatalf("sent %d, want 5000", q1.Matches)
	}
	if q2.Matches >= q1.Matches {
		t.Fatal("no loss observed over a 5% lossy link")
	}
	wantRecv := uint64(refl.Reflected) - (link.Dropped - (5000 - refl.Reflected))
	if q2.Matches != wantRecv {
		t.Fatalf("received %d, want %d (conservation)", q2.Matches, wantRecv)
	}
}

func TestLoopbackPortsExtendTemplateCapacity(t *testing.T) {
	// §6.1: configuring more recirculation paths linearly extends the
	// number of templates one task can hold.
	manyTriggers := func(n int) string {
		src := ""
		for i := 0; i < n; i++ {
			src += fmt.Sprintf(
				"T%d = trigger().set([dip, proto], [9.9.9.%d, udp]).set(length, 1500).set(port, 0)\n",
				i+1, i+1)
		}
		return src
	}
	over := manyTriggers(8) // AcceleratorCapacity(1500) = 5 per path
	ht1 := New(Config{Ports: []float64{100}, RecircPaths: 1})
	if err := ht1.LoadTaskSource("many", over); err == nil {
		t.Fatal("8 large templates accepted on one recirculation path")
	}
	ht2 := New(Config{Ports: []float64{100}, RecircPaths: 2})
	if err := ht2.LoadTaskSource("many", over); err != nil {
		t.Fatalf("2 paths should fit 8 templates: %v", err)
	}
}

func TestDelayQueryMeasuresConstantPath(t *testing.T) {
	// The delay() query (state-based delay testing, Fig. 18b): probes
	// bounce off a reflector and per-probe delays accumulate on-switch.
	ht := New(Config{Ports: []float64{100}, Seed: 15})
	err := ht.LoadTaskSource("delay", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(ipv4.id, range(0, 65535, 1))
    .set(interval, 2us)
    .set(port, 0)
Q1 = query().delay(keys={ipv4.id})
`)
	if err != nil {
		t.Fatal(err)
	}
	refl := testbed.NewReflector(ht.Sim, "refl", 100)
	refl.ExtraDelay = 10 * netsim.Microsecond
	testbed.Connect(ht.Sim, ht.Port(0), refl.Iface, 0)
	ht.Start()
	ht.RunFor(20 * netsim.Millisecond)

	q1, _ := ht.Report("Q1")
	if q1.DelaySamples < 5000 {
		t.Fatalf("only %d delay samples", q1.DelaySamples)
	}
	// The reflector adds 10us; the rest of the path is ~1-2us of pipeline
	// and wire time. The mean must clear the reflector delay and the
	// jitter must stay small.
	if q1.DelayMeanNs < 10000 || q1.DelayMeanNs > 14000 {
		t.Fatalf("mean delay %.0fns, want ~11-12us (10us reflector + path)", q1.DelayMeanNs)
	}
	if q1.DelayMaxNs-q1.DelayMinNs > 300 {
		t.Fatalf("delay spread %.0fns too wide for a constant path", q1.DelayMaxNs-q1.DelayMinNs)
	}
}

func TestVLANSweepTask(t *testing.T) {
	// Per-VLAN testing: the editor sweeps VLAN IDs across generated
	// packets; the DUT-side sink observes every VLAN exactly once per
	// stream pass.
	ht := New(Config{Ports: []float64{100}, Seed: 16})
	err := ht.LoadTaskSource("vlan", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(vlan.id, range(100, 131, 1))
    .set(length, 68)
    .set(interval, 1us)
    .set(loop, 2)
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint16]int{}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	var st netproto.Stack
	sink.OnPacket = func(pkt *netproto.Packet, at netsim.Time) {
		if err := st.Decode(pkt.Data); err == nil && st.Has(netproto.LayerVLAN) {
			seen[st.VLAN.VID]++
		}
	}
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(2 * netsim.Millisecond)

	if len(seen) != 32 {
		t.Fatalf("saw %d VLANs, want 32: %v", len(seen), seen)
	}
	for vid := uint16(100); vid < 132; vid++ {
		if seen[vid] != 2 {
			t.Fatalf("vlan %d seen %d times, want 2 (loop=2)", vid, seen[vid])
		}
	}
}

func TestPaperTestbedFig8(t *testing.T) {
	// The Fig. 8 topology end to end: the tester floods both DUT-facing
	// ports; the DUT forwards to a 40G and a 10G server. The slower
	// downstream links saturate (and the DUT tail-drops the excess),
	// demonstrating the testbed's speed hierarchy.
	ht := New(Config{Ports: []float64{100, 100}, Seed: 17})
	err := ht.LoadTaskSource("fig8", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(length, 256)
    .set(port, [0, 1])
`)
	if err != nil {
		t.Fatal(err)
	}
	tb := testbed.NewPaperTestbed(ht.Sim, ht.Switch, 17)
	ht.Start()
	ht.RunFor(30 * netsim.Microsecond)
	tb.Server1.Reset()
	tb.Server2.Reset()
	ht.RunFor(200 * netsim.Microsecond)

	if g := tb.Server1.ThroughputGbps(); g < 38 || g > 41 {
		t.Fatalf("server1 (40G link) got %.1f Gbps, want ~40", g)
	}
	if g := tb.Server2.ThroughputGbps(); g < 9.5 || g > 10.5 {
		t.Fatalf("server2 (10G link) got %.1f Gbps, want ~10", g)
	}
	// The DUT sheds the 100G->40G/10G overload at its egress queues.
	if tb.DUT.Port(2).TxDrops == 0 || tb.DUT.Port(3).TxDrops == 0 {
		t.Fatalf("DUT should tail-drop the overload: drops %d/%d",
			tb.DUT.Port(2).TxDrops, tb.DUT.Port(3).TxDrops)
	}
}

func TestDeterministicRuns(t *testing.T) {
	// The whole stack is deterministic: identical seeds produce
	// bit-identical reports and counters.
	run := func() (uint64, uint64, float64) {
		ht := New(Config{Ports: []float64{100}, Seed: 42})
		if err := ht.LoadTaskSource("det", `
T1 = trigger()
    .set([dip, sip, proto, dport], [9.9.9.9, 1.1.0.1, udp, 7])
    .set(sport, random('N', 30000, 2000, 16))
    .set(interval, random('E', 3000, 0))
    .set(port, 0)
Q1 = query(T1).reduce(func=count, keys={l4.sport})
`); err != nil {
			t.Fatal(err)
		}
		refl := testbed.NewReflector(ht.Sim, "refl", 100)
		testbed.Connect(ht.Sim, ht.Port(0), refl.Iface, 0)
		ht.Start()
		ht.RunFor(5 * netsim.Millisecond)
		q1, _ := ht.Report("Q1")
		var sum uint64
		for _, r := range q1.Results {
			sum += r.Value*uint64(len(r.Key)) + r.Key[0]
		}
		return q1.Matches, sum, float64(ht.Sender.FiredCount(1))
	}
	m1, s1, f1 := run()
	m2, s2, f2 := run()
	if m1 != m2 || s1 != s2 || f1 != f2 {
		t.Fatalf("non-deterministic: (%d,%d,%.0f) vs (%d,%d,%.0f)", m1, s1, f1, m2, s2, f2)
	}
	if m1 == 0 {
		t.Fatal("degenerate run")
	}
}

func TestMACSweepEditor(t *testing.T) {
	// 48-bit fields sweep too: rotate source MACs across packets.
	ht := New(Config{Ports: []float64{100}, Seed: 18})
	err := ht.LoadTaskSource("mac", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(eth.src, [1, 2, 3])
    .set(interval, 1us)
    .set(loop, 2)
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netproto.MAC]int{}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	var st netproto.Stack
	sink.OnPacket = func(pkt *netproto.Packet, at netsim.Time) {
		if err := st.Decode(pkt.Data); err == nil {
			seen[st.Eth.Src]++
		}
	}
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(1 * netsim.Millisecond)
	if len(seen) != 3 {
		t.Fatalf("saw %d MACs, want 3: %v", len(seen), seen)
	}
	for mac, n := range seen {
		if n != 2 {
			t.Fatalf("mac %v seen %d times, want 2", mac, n)
		}
	}
}

func TestJitteryDUTDelayVariance(t *testing.T) {
	// A jittery DUT produces a delay distribution the delay() query's
	// min/max bracket reveals.
	ht := New(Config{Ports: []float64{100}, Seed: 19})
	err := ht.LoadTaskSource("jitter", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(ipv4.id, range(0, 65535, 1))
    .set(interval, 5us)
    .set(port, 0)
Q1 = query().delay(keys={ipv4.id})
`)
	if err != nil {
		t.Fatal(err)
	}
	refl := testbed.NewReflector(ht.Sim, "refl", 100)
	refl.ExtraDelay = 5 * netsim.Microsecond
	refl.ExtraJitter = 4 * netsim.Microsecond
	testbed.Connect(ht.Sim, ht.Port(0), refl.Iface, 0)
	ht.Start()
	ht.RunFor(20 * netsim.Millisecond)

	q1, _ := ht.Report("Q1")
	if q1.DelaySamples < 2000 {
		t.Fatalf("samples = %d", q1.DelaySamples)
	}
	spread := q1.DelayMaxNs - q1.DelayMinNs
	if spread < 3000 || spread > 4500 {
		t.Fatalf("delay spread %.0fns, want ~4000 (the DUT's jitter window)", spread)
	}
}

func TestMillionFlowReduceStress(t *testing.T) {
	// Scale check: a full pass over 2^20 distinct flows through the
	// generation + reduce pipeline stays exact.
	if testing.Short() {
		t.Skip("stress test")
	}
	ht := New(Config{Ports: []float64{100}, Seed: 20,
		Compiler: compiler.Options{ArraySize: 1 << 19}})
	err := ht.LoadTaskSource("stress", `
T1 = trigger()
    .set([sip, proto, dport, sport], [1.1.0.1, udp, 7, 7])
    .set(dip, range(167772160, 168820735, 1))
    .set(loop, 1)
    .set(port, 0)
Q1 = query(T1).reduce(func=count, keys={ipv4.dip})
`)
	if err != nil {
		t.Fatal(err)
	}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	// 2^20 packets at 6.4ns = ~6.8ms of virtual time.
	ht.RunFor(10 * netsim.Millisecond)

	if sink.Packets != 1<<20 {
		t.Fatalf("generated %d packets, want %d", sink.Packets, 1<<20)
	}
	q1, _ := ht.Report("Q1")
	if q1.Matches != 1<<20 {
		t.Fatalf("Q1 matched %d", q1.Matches)
	}
	if len(q1.Results) != 1<<20 {
		t.Fatalf("distinct keys = %d, want %d", len(q1.Results), 1<<20)
	}
	for _, r := range q1.Results[:100] {
		if r.Value != 1 {
			t.Fatalf("key %v count %d, want 1", r.Key, r.Value)
		}
	}
}

func TestEvictionDigestsStayExactUnderPressure(t *testing.T) {
	// Force heavy counter-table pressure (tiny arrays) so evictions flood
	// the push-mode digest path; the collected report must stay exact
	// because backpressured messages wait on the data plane and the CPU
	// drains the channel at collection (§5.2's push mode end to end).
	ht := New(Config{Ports: []float64{100}, Seed: 22,
		Compiler: compiler.Options{ArraySize: 64}})
	err := ht.LoadTaskSource("pressure", `
T1 = trigger()
    .set([sip, proto, dport, sport], [1.1.0.1, udp, 7, 7])
    .set(dip, range(167772160, 167774207, 1))
    .set(loop, 3)
    .set(port, 0)
Q1 = query(T1).reduce(func=count, keys={ipv4.dip})
`)
	if err != nil {
		t.Fatal(err)
	}
	sink := testbed.NewSink(ht.Sim, "sink", 100)
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(2 * netsim.Millisecond)

	q1, _ := ht.Report("Q1")
	if len(q1.Results) != 2048 {
		t.Fatalf("distinct keys = %d, want 2048", len(q1.Results))
	}
	for _, r := range q1.Results {
		if r.Value != 3 {
			t.Fatalf("key %v count %d, want 3 (loop=3)", r.Key, r.Value)
		}
	}
	if ht.Switch.DigestsSent == 0 {
		t.Fatal("no digests travelled the channel; pressure path untested")
	}
	if ht.Switch.DigestDrops != 0 {
		t.Fatalf("digest drops %d despite backpressure", ht.Switch.DigestDrops)
	}
}
