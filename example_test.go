package hypertester_test

import (
	"fmt"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

// The godoc examples double as executable documentation for the public API;
// their outputs are deterministic because the whole stack runs on a seeded
// virtual clock.

func Example() {
	// Build a tester with one 100G port, load Table 3's throughput task,
	// aim it at a sink, and run 100us of virtual time.
	ht := hypertester.New(hypertester.Config{Ports: []float64{100}, Seed: 1})
	err := ht.LoadTaskSource("throughput", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
`)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	sink := testbed.NewSink(ht.Sim, "dut", 100)
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, testbed.DefaultCableDelay)

	ht.Start()
	ht.RunFor(20 * netsim.Microsecond) // accelerator fill
	sink.Reset()
	ht.RunFor(100 * netsim.Microsecond)

	fmt.Printf("line rate: %.0f Gbps\n", sink.ThroughputGbps())
	// Output:
	// line rate: 100 Gbps
}

func ExampleTester_Report() {
	// Rate-controlled generation with a per-trigger query.
	ht := hypertester.New(hypertester.Config{Ports: []float64{100}, Seed: 1})
	if err := ht.LoadTaskSource("rate", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(interval, 10us)
    .set(loop, 1)
    .set(dport, [80, 81, 82, 83, 84])
    .set(port, 0)
Q1 = query(T1).reduce(func=count, keys={l4.dport})
`); err != nil {
		fmt.Println("load:", err)
		return
	}
	sink := testbed.NewSink(ht.Sim, "dut", 100)
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, 0)
	ht.Start()
	ht.RunFor(netsim.Millisecond)

	rep, _ := ht.Report("Q1")
	fmt.Printf("sent %d packets across %d destination ports\n", rep.Matches, len(rep.Results))
	// Output:
	// sent 5 packets across 5 destination ports
}

func ExampleTester_GeneratedP4() {
	ht := hypertester.New(hypertester.Config{Ports: []float64{100}})
	_ = ht.LoadTaskSource("tiny", `T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(port, 0)`)
	p4 := ht.GeneratedP4()
	fmt.Println(len(p4) > 500)
	// Output:
	// true
}
