package hypertester_test

// One benchmark per table and figure of the paper's evaluation (§7).
// `go test -bench=. -benchmem` regenerates every result; each benchmark
// prints its paper-style table once and reports the experiment's headline
// number (shared with cmd/htbench via experiments.Headline) as a custom
// metric. Quick-mode experiment windows keep the suite fast; run
// cmd/htbench without -quick for tighter statistics.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/experiments"
)

var benchCfg = experiments.Config{Quick: true, Seed: 1}

// runExperiment executes fn once per benchmark invocation, prints the table
// on the first run, and reports the experiment's headline metric. A result
// whose headline cell is missing or unparseable FAILS the benchmark — a
// broken experiment must not report a fake 0 as its number of record.
func runExperiment(b *testing.B, fn func(experiments.Config) *experiments.Result) {
	b.Helper()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = fn(benchCfg)
	}
	if res == nil {
		b.Fatal("experiment returned nil")
	}
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "ERROR") {
			b.Fatal(n)
		}
	}
	b.StopTimer()
	v, unit, err := experiments.Headline(res)
	if err != nil {
		b.Fatalf("headline metric: %v", err)
	}
	b.ReportMetric(v, unit)
	b.Logf("\n%s", res.String())
}

func BenchmarkTable5_LoC(b *testing.B)                { runExperiment(b, experiments.Table5LoC) }
func BenchmarkFig9_SinglePortThroughput(b *testing.B) { runExperiment(b, experiments.Fig9SinglePort) }
func BenchmarkFig10_MultiPort(b *testing.B)           { runExperiment(b, experiments.Fig10MultiPort) }
func BenchmarkFig11_RateControl40G(b *testing.B) {
	runExperiment(b, experiments.Fig11RateControl40G)
}
func BenchmarkFig12_RateControl100G(b *testing.B) {
	runExperiment(b, experiments.Fig12RateControl100G)
}
func BenchmarkFig13_RandomQQ(b *testing.B)    { runExperiment(b, experiments.Fig13RandomQQ) }
func BenchmarkFig14_Accelerator(b *testing.B) { runExperiment(b, experiments.Fig14Accelerator) }
func BenchmarkFig15_Replicator(b *testing.B)  { runExperiment(b, experiments.Fig15Replicator) }
func BenchmarkFig16_StatCollection(b *testing.B) {
	runExperiment(b, experiments.Fig16StatCollection)
}
func BenchmarkFig17_ExactMatch(b *testing.B) { runExperiment(b, experiments.Fig17ExactMatch) }
func BenchmarkTable6_Cost(b *testing.B)      { runExperiment(b, experiments.Table6Cost) }
func BenchmarkTable7_Resources(b *testing.B) { runExperiment(b, experiments.Table7Resources) }
func BenchmarkTable8_SynFlood(b *testing.B)  { runExperiment(b, experiments.Table8SynFlood) }
func BenchmarkFig18_DelayTesting(b *testing.B) {
	runExperiment(b, experiments.Fig18DelayTesting)
}
func BenchmarkAblationA_SketchAccuracy(b *testing.B) {
	runExperiment(b, experiments.AblationSketchAccuracy)
}
func BenchmarkAblationB_CuckooOccupancy(b *testing.B) {
	runExperiment(b, experiments.AblationCuckooOccupancy)
}
func BenchmarkAblationC_Amplification(b *testing.B) {
	runExperiment(b, experiments.AblationTemplateAmplification)
}
func BenchmarkCaseStudy_WebScale(b *testing.B) { runExperiment(b, experiments.CaseWebScale) }

// Sanity check that every experiment is wired into All and the parallel
// runner returns them in paper order.
func TestAllExperimentsRun(t *testing.T) {
	results := experiments.All(experiments.Config{Quick: true, Seed: 1})
	if len(results) != 18 {
		t.Fatalf("All() ran %d experiments, want 18", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r == nil || len(r.Rows) == 0 {
			t.Fatalf("experiment %+v has no rows", r)
		}
		for _, n := range r.Notes {
			if strings.HasPrefix(n, "ERROR") {
				t.Fatalf("%s failed: %s", r.ID, n)
			}
		}
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if testing.Verbose() {
			fmt.Println(r.String())
		}
	}
}
