package hypertester_test

// One benchmark per table and figure of the paper's evaluation (§7).
// `go test -bench=. -benchmem` regenerates every result; each benchmark
// prints its paper-style table once and reports a headline number as a
// custom metric. Quick-mode experiment windows keep the suite fast; run
// cmd/htbench without -quick for tighter statistics.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/experiments"
)

var benchCfg = experiments.Config{Quick: true, Seed: 1}

// runExperiment executes fn once per benchmark invocation, prints the table
// on the first run, and lets the caller extract a headline metric.
func runExperiment(b *testing.B, fn func(experiments.Config) *experiments.Result,
	metric func(*experiments.Result) (float64, string)) {
	b.Helper()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = fn(benchCfg)
	}
	if res == nil {
		b.Fatal("experiment returned nil")
	}
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "ERROR") {
			b.Fatal(n)
		}
	}
	b.StopTimer()
	if v, unit := metric(res); unit != "" {
		b.ReportMetric(v, unit)
	}
	b.Logf("\n%s", res.String())
}

// cell parses a leading float out of a result cell like "100.0" or "4.50 Mbps".
func cell(res *experiments.Result, row, col int) float64 {
	if row >= len(res.Rows) || col >= len(res.Rows[row].Values) {
		return 0
	}
	f := strings.Fields(res.Rows[row].Values[col])
	if len(f) == 0 {
		return 0
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(f[0], "%"), "x"), 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable5_LoC(b *testing.B) {
	runExperiment(b, experiments.Table5LoC, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "NTAPI-LoC"
	})
}

func BenchmarkFig9_SinglePortThroughput(b *testing.B) {
	runExperiment(b, experiments.Fig9SinglePort, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "Gbps-64B@100G"
	})
}

func BenchmarkFig10_MultiPort(b *testing.B) {
	runExperiment(b, experiments.Fig10MultiPort, func(r *experiments.Result) (float64, string) {
		return cell(r, len(r.Rows)-1, 0), "Gbps-aggregate"
	})
}

func BenchmarkFig11_RateControl40G(b *testing.B) {
	runExperiment(b, experiments.Fig11RateControl40G, func(r *experiments.Result) (float64, string) {
		return cell(r, 1, 0), "ns-HT-MAE-1Mpps"
	})
}

func BenchmarkFig12_RateControl100G(b *testing.B) {
	runExperiment(b, experiments.Fig12RateControl100G, func(r *experiments.Result) (float64, string) {
		return cell(r, 1, 0), "ns-MAE-1Mpps"
	})
}

func BenchmarkFig13_RandomQQ(b *testing.B) {
	runExperiment(b, experiments.Fig13RandomQQ, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "QQ-corr-normal"
	})
}

func BenchmarkFig14_Accelerator(b *testing.B) {
	runExperiment(b, experiments.Fig14Accelerator, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "ns-RTT-64B"
	})
}

func BenchmarkFig15_Replicator(b *testing.B) {
	runExperiment(b, experiments.Fig15Replicator, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "ns-mcast-64B"
	})
}

func BenchmarkFig16_StatCollection(b *testing.B) {
	runExperiment(b, experiments.Fig16StatCollection, func(r *experiments.Result) (float64, string) {
		return cell(r, 4, 0), "Mbps-digest-256B"
	})
}

func BenchmarkFig17_ExactMatch(b *testing.B) {
	runExperiment(b, experiments.Fig17ExactMatch, func(r *experiments.Result) (float64, string) {
		return cell(r, len(r.Rows)-1, 0), "entries-16b"
	})
}

func BenchmarkTable6_Cost(b *testing.B) {
	runExperiment(b, experiments.Table6Cost, func(r *experiments.Result) (float64, string) {
		return cell(r, 2, 0), "USD-saved-per-Tbps"
	})
}

func BenchmarkTable7_Resources(b *testing.B) {
	runExperiment(b, experiments.Table7Resources, func(r *experiments.Result) (float64, string) {
		return cell(r, len(r.Rows)-1, 5), "pct-SALU-reduce"
	})
}

func BenchmarkTable8_SynFlood(b *testing.B) {
	runExperiment(b, experiments.Table8SynFlood, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "Gbps-testbed"
	})
}

func BenchmarkFig18_DelayTesting(b *testing.B) {
	runExperiment(b, experiments.Fig18DelayTesting, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "ns-HT-HW-mean"
	})
}

func BenchmarkAblationA_SketchAccuracy(b *testing.B) {
	runExperiment(b, experiments.AblationSketchAccuracy, func(r *experiments.Result) (float64, string) {
		return cell(r, 0, 0), "counter-err-keys"
	})
}

func BenchmarkAblationB_CuckooOccupancy(b *testing.B) {
	runExperiment(b, experiments.AblationCuckooOccupancy, func(r *experiments.Result) (float64, string) {
		return cell(r, 2, 0), "pct-onchip-0.75"
	})
}

func BenchmarkAblationC_Amplification(b *testing.B) {
	runExperiment(b, experiments.AblationTemplateAmplification, func(r *experiments.Result) (float64, string) {
		return cell(r, 2, 0), "amplification-x"
	})
}

func BenchmarkCaseStudy_WebScale(b *testing.B) {
	runExperiment(b, experiments.CaseWebScale, func(r *experiments.Result) (float64, string) {
		return cell(r, 1, 0), "handshakes-per-s"
	})
}

// Sanity check that every experiment is wired into All.
func TestAllExperimentsRun(t *testing.T) {
	results := experiments.All(experiments.Config{Quick: true, Seed: 1})
	if len(results) != 18 {
		t.Fatalf("All() ran %d experiments, want 18", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r == nil || len(r.Rows) == 0 {
			t.Fatalf("experiment %+v has no rows", r)
		}
		for _, n := range r.Notes {
			if strings.HasPrefix(n, "ERROR") {
				t.Fatalf("%s failed: %s", r.ID, n)
			}
		}
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if testing.Verbose() {
			fmt.Println(r.String())
		}
	}
}
