GO ?= go

.PHONY: all build test race lint vet bench perfguard clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project analyzers: poolsafety, determinism, atcall (see DESIGN.md §8).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/htlint ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) run ./cmd/htbench -quick

# Same suite with each testbed partitioned onto the parallel LP engine;
# headlines are bit-identical to `bench`.
bench-par:
	$(GO) run ./cmd/htbench -quick -simworkers 4

# Regenerate results and gate on the committed baseline: bit-identical
# headlines, wall time within 15%.
perfguard:
	$(GO) run ./cmd/htbench -quick -workers 1 -json /tmp/htbench-fresh.json
	$(GO) run ./cmd/perfguard -baseline BENCH_results.json -fresh /tmp/htbench-fresh.json

clean:
	$(GO) clean ./...
