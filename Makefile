GO ?= go

.PHONY: all build test race lint vet verify bench perfguard clean \
	fuzz-seeds fuzz trace-oracle trace bench-par suite

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package alone runs >10m under the race detector (it
# re-executes the whole suite at several worker counts), so the default
# per-package timeout needs raising.
race:
	$(GO) test -race -timeout 30m ./...

# Replay the committed decoder fuzz corpus as regression tests.
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/netproto/

# Open-ended fuzzing session against the packet decoder.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStackDecode -fuzztime 60s ./internal/netproto/

# Full-trace differential oracle: the per-packet lifecycle trace must be
# bit-identical between the sequential and parallel engines.
trace-oracle:
	$(GO) test -race -run TestTrace -count=1 ./internal/experiments/ -v

# Traced sample run: writes a Perfetto-loadable trace of the observability
# workload (load at https://ui.perfetto.dev).
trace:
	$(GO) run ./cmd/htbench -quick -run "Fig. 10" -json /tmp/htbench-trace.json -trace perfetto-trace.json

# Project analyzers: poolsafety, determinism, atcall, obsalloc (DESIGN.md §8).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/htlint ./...

vet:
	$(GO) vet ./...

# Path-sensitive symbolic verification of the 18-program experiment
# corpus, plus the witness-packet differential: every extracted witness
# must replay bit-identically through the compiled ASIC plan and the
# naive IR interpreter (DESIGN.md §12).
verify:
	$(GO) run ./cmd/htverify
	$(GO) test -race -run 'TestCorpusVerifiesClean|TestWitnessDifferential' -count=1 ./internal/experiments/

# Run the starter scenario suite on both engines (sequential, then the
# parallel LP engine with 4 workers); results land in /tmp. The sync test
# in internal/scenario pins examples/suites/starter.json to the built-in
# library, so this also exercises the committed file.
suite:
	$(GO) run ./cmd/hypertester -suite examples/suites/starter.json -results /tmp/suite-results.json
	$(GO) run ./cmd/hypertester -suite examples/suites/starter.json -simworkers 4 -results /tmp/suite-results-par.json

bench:
	$(GO) run ./cmd/htbench -quick

# Same suite with each testbed partitioned onto the parallel LP engine;
# headlines are bit-identical to `bench`.
bench-par:
	$(GO) run ./cmd/htbench -quick -simworkers 4

# Regenerate results and gate on the committed baseline: bit-identical
# headlines, wall time within 15%.
perfguard:
	$(GO) run ./cmd/htbench -quick -workers 1 -json /tmp/htbench-fresh.json
	$(GO) run ./cmd/perfguard -baseline BENCH_results.json -fresh /tmp/htbench-fresh.json

clean:
	$(GO) clean ./...
