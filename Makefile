GO ?= go

.PHONY: all build test race lint vet bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project analyzers: poolsafety, determinism, atcall (see DESIGN.md §8).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/htlint ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) run ./cmd/htbench -quick

clean:
	$(GO) clean ./...
