module github.com/hypertester/hypertester

go 1.22
